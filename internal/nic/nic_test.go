package nic

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

type rig struct {
	cache *cache.Cache
	alloc *mem.Allocator
	clock *sim.Clock
	nic   *NIC
}

func newRig(t *testing.T, mutate func(*Config), ccfg *cache.Config) *rig {
	t.Helper()
	clock := sim.NewClock()
	cfg := cache.PaperConfig()
	if ccfg != nil {
		cfg = *ccfg
	}
	c := cache.New(cfg, clock)
	alloc := mem.NewAllocator(1<<30, sim.NewRNG(42))
	ncfg := DefaultConfig()
	if mutate != nil {
		mutate(&ncfg)
	}
	n, err := New(ncfg, c, alloc, clock, sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	return &rig{cache: c, alloc: alloc, clock: clock, nic: n}
}

func frame(seq uint64, size int, arrival uint64, known bool) netmodel.Frame {
	return netmodel.Frame{Seq: seq, Size: size, Arrival: arrival, Known: known}
}

func (r *rig) deliver(f netmodel.Frame) {
	if f.Arrival > r.clock.Now() {
		r.clock.AdvanceTo(f.Arrival)
	}
	r.nic.Receive(f)
	r.nic.ProcessDriver(r.clock.Now() + r.nic.Config().DriverLatency)
}

func TestInitAllocatesDistinctPages(t *testing.T) {
	r := newRig(t, nil, nil)
	seen := map[mem.Addr]bool{}
	for i := 0; i < r.nic.Config().RingSize; i++ {
		p := r.nic.BufferPage(i)
		if !p.PageAligned() {
			t.Fatalf("buffer %d page %#x not aligned", i, uint64(p))
		}
		if seen[p] {
			t.Fatalf("buffer %d shares page %#x", i, uint64(p))
		}
		seen[p] = true
	}
}

func TestDMAWritesBufferBlocks(t *testing.T) {
	r := newRig(t, nil, nil)
	buf := r.nic.BufferPage(0)
	r.nic.Receive(frame(0, 256, 0, false))
	for b := 0; b < 4; b++ {
		if !r.cache.Contains(uint64(buf) + uint64(b*64)) {
			t.Errorf("block %d not in cache after DDIO DMA", b)
		}
	}
	if r.cache.Contains(uint64(buf) + 4*64) {
		t.Error("DMA wrote beyond the packet size")
	}
}

func TestDriverProcessingOrderAndLatency(t *testing.T) {
	r := newRig(t, nil, nil)
	r.nic.Receive(frame(0, 64, 100, false))
	r.nic.ProcessDriver(100) // before dueAt: nothing processed
	if r.nic.PendingDriverWork() != 1 {
		t.Fatal("packet should still be pending")
	}
	r.nic.ProcessDriver(100 + r.nic.Config().DriverLatency)
	if r.nic.PendingDriverWork() != 0 {
		t.Fatal("packet should be processed")
	}
	if r.nic.Stats().Dropped != 1 {
		t.Error("unknown-protocol frame must be dropped")
	}
}

func TestRingOrderStableUnderRecycling(t *testing.T) {
	// §III-A: the driver reuses buffers, so the page of each ring slot
	// never changes, no matter the traffic mix.
	r := newRig(t, nil, nil)
	before := make([]mem.Addr, r.nic.Config().RingSize)
	for i := range before {
		before[i] = r.nic.BufferPage(i)
	}
	rng := sim.NewRNG(3)
	for i := 0; i < 1000; i++ {
		size := 64 + rng.Intn(1400)
		r.deliver(frame(uint64(i), size, uint64(i)*10_000, rng.Bernoulli(0.5)))
	}
	for i := range before {
		if r.nic.BufferPage(i) != before[i] {
			t.Fatalf("ring slot %d changed page; order not stable", i)
		}
	}
}

func TestSmallPacketCopiedAndReused(t *testing.T) {
	r := newRig(t, nil, nil)
	r.deliver(frame(0, 128, 0, true))
	st := r.nic.Stats()
	if st.Copied != 1 || st.Fragged != 0 {
		t.Errorf("128B known packet must take the copy path: %+v", st)
	}
	if st.PageFlips != 0 {
		t.Error("copy path must not flip the page offset")
	}
}

func TestLargePacketFlipsHalfPage(t *testing.T) {
	r := newRig(t, nil, nil)
	page := r.nic.BufferPage(0)
	r.deliver(frame(0, 1000, 0, true))
	st := r.nic.Stats()
	if st.Fragged != 1 || st.PageFlips != 1 {
		t.Errorf("1000B packet must take the frag path and flip: %+v", st)
	}
	// After RingSize packets the same descriptor is used again, now with
	// the second half-page.
	for i := 1; i < r.nic.Config().RingSize; i++ {
		r.deliver(frame(uint64(i), 64, uint64(i)*100_000, false))
	}
	r.deliver(frame(999, 1000, 99_000_000, true))
	secondHalf := uint64(page) + 2048
	if !r.cache.Contains(secondHalf) {
		t.Error("second large packet to slot 0 must use the flipped half-page")
	}
}

func TestPrefetchSecondBlockArtifact(t *testing.T) {
	// A 1-block packet must still bring block 1 into the cache — the
	// driver prefetch the paper calls out in Fig 8.
	r := newRig(t, nil, nil)
	buf := r.nic.BufferPage(0)
	r.deliver(frame(0, 64, 0, false))
	if !r.cache.Contains(uint64(buf) + 64) {
		t.Error("block 1 must be prefetched even for 1-block packets")
	}
	if r.cache.Contains(uint64(buf) + 2*64) {
		t.Error("block 2 must NOT be touched for 1-block packets")
	}
}

func TestPrefetchDisabled(t *testing.T) {
	r := newRig(t, func(c *Config) { c.PrefetchSecondBlock = false }, nil)
	buf := r.nic.BufferPage(0)
	r.deliver(frame(0, 64, 0, false))
	if r.cache.Contains(uint64(buf) + 64) {
		t.Error("prefetch disabled: block 1 must stay cold")
	}
}

func TestRingWrapsAround(t *testing.T) {
	r := newRig(t, func(c *Config) { c.RingSize = 8 }, nil)
	for i := 0; i < 20; i++ {
		r.deliver(frame(uint64(i), 64, uint64(i)*1000, false))
	}
	if r.nic.NextDescriptor() != 20%8 {
		t.Errorf("head %d want %d", r.nic.NextDescriptor(), 20%8)
	}
	if r.nic.Stats().Received != 20 {
		t.Error("all frames must be received")
	}
}

func TestFullRandomizationChangesPages(t *testing.T) {
	r := newRig(t, func(c *Config) { c.Randomize = RandomizeFull }, nil)
	p0 := r.nic.BufferPage(0)
	r.deliver(frame(0, 64, 0, false))
	if r.nic.BufferPage(0) == p0 {
		t.Error("full randomization must re-allocate the buffer after use")
	}
	if r.alloc.FreePages() == 0 {
		t.Error("old pages must be freed")
	}
}

func TestPeriodicRandomization(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.Randomize = RandomizePeriodic
		c.RandomizeInterval = 10
	}, nil)
	before := r.nic.RingAlignedSets(r.cache.Config())
	for i := 0; i < 9; i++ {
		r.deliver(frame(uint64(i), 64, uint64(i)*1000, false))
	}
	mid := r.nic.RingAlignedSets(r.cache.Config())
	for i := range before {
		if mid[i] != before[i] {
			t.Fatal("ring must be stable before the interval elapses")
		}
	}
	r.deliver(frame(9, 64, 9_000, false))
	after := r.nic.RingAlignedSets(r.cache.Config())
	changed := 0
	for i := range before {
		if after[i] != before[i] {
			changed++
		}
	}
	if changed < len(before)/2 {
		t.Errorf("periodic randomization changed only %d/%d slots", changed, len(before))
	}
	if r.nic.Stats().Randomizations != 1 {
		t.Errorf("randomizations=%d want 1", r.nic.Stats().Randomizations)
	}
}

func TestReallocProbBreaksStability(t *testing.T) {
	r := newRig(t, func(c *Config) { c.ReallocProb = 0.5 }, nil)
	before := make([]mem.Addr, r.nic.Config().RingSize)
	for i := range before {
		before[i] = r.nic.BufferPage(i)
	}
	for i := 0; i < 512; i++ {
		r.deliver(frame(uint64(i), 128, uint64(i)*10_000, true))
	}
	changed := 0
	for i := range before {
		if r.nic.BufferPage(i) != before[i] {
			changed++
		}
	}
	if changed == 0 {
		t.Error("with ReallocProb=0.5 some buffers must have moved")
	}
}

func TestRingAlignedSetsGroundTruth(t *testing.T) {
	r := newRig(t, nil, nil)
	ccfg := r.cache.Config()
	seq := r.nic.RingAlignedSets(ccfg)
	if len(seq) != 256 {
		t.Fatalf("sequence length %d", len(seq))
	}
	for i, s := range seq {
		if s < 0 || s >= ccfg.AlignedSetCount() {
			t.Fatalf("slot %d aligned set %d out of range", i, s)
		}
	}
}

func TestNoDDIODriverReadsFetchHeader(t *testing.T) {
	ccfg := cache.PaperConfig()
	ccfg.DDIO = false
	r := newRig(t, nil, &ccfg)
	buf := r.nic.BufferPage(0)
	r.nic.Receive(frame(0, 256, 0, false))
	// Without DDIO the DMA write leaves nothing in the cache...
	if r.cache.Contains(uint64(buf)) {
		t.Fatal("no-DDIO DMA must not allocate in LLC")
	}
	// ...until the driver reads the header (+ prefetch).
	r.nic.ProcessDriver(r.nic.Config().DriverLatency)
	if !r.cache.Contains(uint64(buf)) || !r.cache.Contains(uint64(buf)+64) {
		t.Error("driver header read must demand-fetch blocks 0 and 1")
	}
	// Blocks 2+ of a dropped frame stay cold: this is why no-DDIO attacks
	// lose size resolution on large dropped frames (§IV-d).
	if r.cache.Contains(uint64(buf) + 2*64) {
		t.Error("dropped frame payload must stay cold without DDIO")
	}
}

func TestStatsConservation(t *testing.T) {
	f := func(seed int64) bool {
		clock := sim.NewClock()
		c := cache.New(cache.ScaledConfig(4, 512, 8), clock)
		alloc := mem.NewAllocator(1<<28, sim.NewRNG(seed))
		n, err := New(DefaultConfig(), c, alloc, clock, sim.NewRNG(seed))
		if err != nil {
			return false
		}
		rng := sim.NewRNG(seed + 1)
		for i := 0; i < 400; i++ {
			f := frame(uint64(i), 64+rng.Intn(1400), uint64(i)*5000, rng.Bernoulli(0.7))
			clock.AdvanceTo(f.Arrival)
			n.Receive(f)
			n.ProcessDriver(clock.Now() + 100_000)
		}
		st := n.Stats()
		return st.Received == 400 &&
			st.Dropped+st.Copied+st.Fragged == st.Received &&
			st.Reused+st.Reallocated == st.Received
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
