package nic

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// Snapshot is a deep copy of the driver model's mutable state: the rx ring
// (descriptor pages change under reallocation and the §VI defenses), the
// head cursor, DMA-completed frames awaiting driver processing, the skb
// cursor and pool, the randomization counters, the driver counters, and
// the driver RNG's stream position.
type Snapshot struct {
	ring     []descriptor
	head     int
	queue    []pending
	skb      []mem.Addr
	skbIdx   int
	descRing mem.Addr
	sincePct int
	stats    Stats
	rng      *sim.RNGState // nil when the driver was built without an RNG
}

// NewShell builds a driver model shaped for cfg without allocating any
// buffer, skb, or descriptor-ring pages — a restore target for the
// machine-clone path, where Restore immediately overwrites every page
// address with the snapshot's. Geometry validation matches New; a shell
// that is never restored has a zeroed ring and must not receive traffic.
func NewShell(cfg Config, c *cache.Cache, alloc *mem.Allocator, clock *sim.Clock, rng *sim.RNG) (*NIC, error) {
	if cfg.RingSize <= 0 || cfg.BufferSize <= 0 || cfg.BufferSize > mem.PageSize {
		return nil, fmt.Errorf("nic: invalid ring/buffer geometry %d/%d", cfg.RingSize, cfg.BufferSize)
	}
	if cfg.SKBPages <= 0 {
		cfg.SKBPages = 1
	}
	return &NIC{
		cfg: cfg, cache: c, alloc: alloc, clock: clock, rng: rng,
		ring: make([]descriptor, cfg.RingSize),
		skb:  make([]mem.Addr, cfg.SKBPages),
	}, nil
}

// Snapshot captures the NIC+driver state. The returned value is immutable
// and safe to restore into any NIC with the same ring geometry.
func (n *NIC) Snapshot() *Snapshot {
	s := &Snapshot{}
	n.SnapshotInto(s)
	// The scratch path reuses s.rng; a fresh snapshot owns its state.
	if n.rng != nil {
		st := n.rng.Snapshot()
		s.rng = &st
	}
	return s
}

// SnapshotInto captures the NIC+driver state into a caller-owned scratch
// snapshot, reusing its backing slices (and the RNG-state box, once one
// exists). It exists for the offline/build path and benchmarks that
// snapshot repeatedly; a snapshot filed in an artifact must be a fresh
// Snapshot(), since artifacts rely on snapshot immutability.
func (n *NIC) SnapshotInto(s *Snapshot) {
	s.ring = append(s.ring[:0], n.ring...)
	s.head = n.head
	s.queue = append(s.queue[:0], n.queue...)
	s.skb = append(s.skb[:0], n.skb...)
	s.skbIdx = n.skbIdx
	s.descRing = n.descRing
	s.sincePct = n.sincePct
	s.stats = n.stats
	switch {
	case n.rng == nil:
		s.rng = nil
	case s.rng == nil:
		st := n.rng.Snapshot()
		s.rng = &st
	default:
		*s.rng = n.rng.Snapshot()
	}
}

// Restore overwrites the NIC's mutable state from a snapshot taken on a
// NIC with the same ring geometry. It panics on a geometry mismatch.
func (n *NIC) Restore(s *Snapshot) {
	n.restoreCore(s)
	switch {
	case s.rng == nil:
		n.rng = nil
	case n.rng == nil:
		n.rng = sim.NewRNG(s.rng.Seed)
		n.rng.Restore(*s.rng)
	default:
		n.rng.Restore(*s.rng)
	}
}

// RestoreSkipRNG is Restore minus the driver-RNG replay, for callers that
// reseed the RNG immediately afterwards (testbed.RestoreReseeded): replaying
// a long offline draw history just to throw the position away is the single
// largest cost of a warm restore. The RNG keeps its nil-ness in sync with
// the snapshot so the subsequent ReseedRNG sees the right shape.
func (n *NIC) RestoreSkipRNG(s *Snapshot) {
	n.restoreCore(s)
	switch {
	case s.rng == nil:
		n.rng = nil
	case n.rng == nil:
		n.rng = sim.NewRNG(s.rng.Seed)
	}
}

// restoreCore copies everything but the RNG, reusing the NIC's existing
// backing arrays — steady-state restores (one per rig-pool lease) are pure
// memcpys with zero allocations.
func (n *NIC) restoreCore(s *Snapshot) {
	if len(s.ring) != len(n.ring) || len(s.skb) != len(n.skb) {
		panic(fmt.Sprintf("nic: restoring %d-desc/%d-skb snapshot into %d-desc/%d-skb driver",
			len(s.ring), len(s.skb), len(n.ring), len(n.skb)))
	}
	copy(n.ring, s.ring)
	n.head = s.head
	n.queue = append(n.queue[:0], s.queue...)
	copy(n.skb, s.skb)
	n.skbIdx = s.skbIdx
	n.descRing = s.descRing
	n.sincePct = s.sincePct
	n.stats = s.stats
}

// descriptorGob and pendingGob mirror the unexported ring structs with
// exported fields for the disk-backed artifact store.
type descriptorGob struct {
	Page   mem.Addr
	Offset uint32
}

type pendingGob struct {
	Frame   netmodel.Frame
	DescIdx int
	Buf     mem.Addr
	DueAt   uint64
}

type snapshotGob struct {
	Ring     []descriptorGob
	Head     int
	Queue    []pendingGob
	SKB      []mem.Addr
	SKBIdx   int
	DescRing mem.Addr
	SincePct int
	Stats    Stats
	RNG      *sim.RNGState
}

// GobEncode serializes the NIC snapshot (disk-backed warm starts).
func (s *Snapshot) GobEncode() ([]byte, error) {
	w := snapshotGob{
		Head: s.head, SKB: s.skb, SKBIdx: s.skbIdx,
		DescRing: s.descRing, SincePct: s.sincePct, Stats: s.stats, RNG: s.rng,
	}
	w.Ring = make([]descriptorGob, len(s.ring))
	for i, d := range s.ring {
		w.Ring[i] = descriptorGob{Page: d.page, Offset: d.offset}
	}
	w.Queue = make([]pendingGob, len(s.queue))
	for i, p := range s.queue {
		w.Queue[i] = pendingGob{Frame: p.frame, DescIdx: p.descIdx, Buf: p.buf, DueAt: p.dueAt}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode rebuilds a NIC snapshot from its serialized form.
func (s *Snapshot) GobDecode(b []byte) error {
	var w snapshotGob
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	s.head, s.skb, s.skbIdx = w.Head, w.SKB, w.SKBIdx
	s.descRing, s.sincePct, s.stats, s.rng = w.DescRing, w.SincePct, w.Stats, w.RNG
	s.ring = make([]descriptor, len(w.Ring))
	for i, d := range w.Ring {
		s.ring[i] = descriptor{page: d.Page, offset: d.Offset}
	}
	s.queue = nil
	if len(w.Queue) > 0 {
		s.queue = make([]pending, len(w.Queue))
		for i, p := range w.Queue {
			s.queue[i] = pending{frame: p.Frame, descIdx: p.DescIdx, buf: p.Buf, dueAt: p.DueAt}
		}
	}
	return nil
}

// ReseedRNG re-derives the driver's RNG stream from a fresh seed — the
// online-phase decorrelation hook (testbed.ReseedOnline). The driver draws
// randomness only for buffer reallocation, so with ReallocProb == 0 and no
// §VI defense this is a no-op in effect. An existing RNG is reseeded in
// place (the rig-lease path reseeds once per warm trial).
func (n *NIC) ReseedRNG(seed int64) {
	s := sim.DeriveSeed(seed, "driver-online")
	if n.rng != nil {
		n.rng.Reseed(s)
		return
	}
	n.rng = sim.NewRNG(s)
}
