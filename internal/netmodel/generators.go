package netmodel

import "repro/internal/sim"

// Source produces frames in arrival order. Generators are iterators rather
// than materialized slices because channel-capacity experiments send
// hundreds of thousands of frames.
type Source interface {
	// Next returns the next frame; ok=false when the stream is exhausted.
	Next() (Frame, bool)
}

// ConstantSource emits fixed-size frames at a fixed packet rate starting at
// a given cycle — the broadcast streams of §III-B (Fig 7, Fig 8).
type ConstantSource struct {
	wire    *Wire
	size    int
	period  uint64
	nextAt  uint64
	remain  int
	known   bool
	started bool
}

// NewConstantSource emits count frames of the given size at packetRate
// frames/second beginning at cycle start. count < 0 means unbounded.
func NewConstantSource(wire *Wire, size int, packetRate float64, start uint64, count int) *ConstantSource {
	return &ConstantSource{
		wire:   wire,
		size:   size,
		period: sim.CyclesPerSecond(packetRate),
		nextAt: start,
		remain: count,
	}
}

// Next implements Source.
func (s *ConstantSource) Next() (Frame, bool) {
	if s.remain == 0 {
		return Frame{}, false
	}
	if s.remain > 0 {
		s.remain--
	}
	f := s.wire.Send(s.size, s.nextAt, s.known)
	s.nextAt += s.period
	return f, true
}

// SymbolSource encodes a symbol stream into frame sizes: each symbol S is
// sent as packetsPerSymbol frames of size (S+2)*64 bytes, back to back at
// line rate (§IV-b). With the full ring this is 256 packets per symbol;
// the multi-buffer scheme (Fig 12a,b) divides the ring into n sections and
// sends 256/n packets per symbol.
type SymbolSource struct {
	wire             *Wire
	symbols          []int
	packetsPerSymbol int
	idx              int
	inSymbol         int
	earliest         uint64
}

// NewSymbolSource builds the covert-channel trojan's frame stream.
func NewSymbolSource(wire *Wire, symbols []int, packetsPerSymbol int, start uint64) *SymbolSource {
	return &SymbolSource{
		wire:             wire,
		symbols:          symbols,
		packetsPerSymbol: packetsPerSymbol,
		earliest:         start,
	}
}

// Next implements Source.
func (s *SymbolSource) Next() (Frame, bool) {
	if s.idx >= len(s.symbols) {
		return Frame{}, false
	}
	sym := s.symbols[s.idx]
	f := s.wire.Send(SizeForBlocks(sym+2), s.earliest, false)
	s.inSymbol++
	if s.inSymbol == s.packetsPerSymbol {
		s.inSymbol = 0
		s.idx++
	}
	return f, true
}

// TraceSource replays an explicit (size, gap) trace — the web-traffic
// replays of §V. Gaps are cycles between consecutive sends.
type TraceSource struct {
	wire   *Wire
	sizes  []int
	gaps   []uint64
	idx    int
	nextAt uint64
}

// NewTraceSource replays sizes[i] with gaps[i] cycles before each frame
// (gaps may be shorter than len(sizes); missing entries are zero).
func NewTraceSource(wire *Wire, sizes []int, gaps []uint64, start uint64) *TraceSource {
	return &TraceSource{wire: wire, sizes: sizes, gaps: gaps, nextAt: start}
}

// Next implements Source.
func (s *TraceSource) Next() (Frame, bool) {
	if s.idx >= len(s.sizes) {
		return Frame{}, false
	}
	if s.idx < len(s.gaps) {
		s.nextAt += s.gaps[s.idx]
	}
	f := s.wire.Send(s.sizes[s.idx], s.nextAt, true)
	s.nextAt = f.Arrival
	s.idx++
	return f, true
}

// ReorderingSource wraps a Source and swaps adjacent frames with a
// rate-dependent probability, modeling the out-of-order arrivals the paper
// observes at 640 kbps (Fig 12d: "the error rate jumps at 640 kbps because
// at that speed the packets start to arrive out-of-order").
type ReorderingSource struct {
	inner   Source
	rng     *sim.RNG
	p       float64
	pending *Frame
}

// NewReorderingSource swaps adjacent frames with probability p.
func NewReorderingSource(inner Source, p float64, rng *sim.RNG) *ReorderingSource {
	return &ReorderingSource{inner: inner, rng: rng, p: p}
}

// Next implements Source. A swap exchanges the sizes of two adjacent
// frames (their DMA order is what the spy observes, so swapping payload
// order while keeping arrival slots models NIC-queue reordering).
func (s *ReorderingSource) Next() (Frame, bool) {
	if s.pending != nil {
		f := *s.pending
		s.pending = nil
		return f, true
	}
	f, ok := s.inner.Next()
	if !ok {
		return Frame{}, false
	}
	if s.p > 0 && s.rng.Bernoulli(s.p) {
		g, ok2 := s.inner.Next()
		if ok2 {
			f.Size, g.Size = g.Size, f.Size
			s.pending = &g
		}
	}
	return f, true
}

// ReorderProbabilityAt models NIC-queue reordering as a function of the
// sender's packet rate: negligible at moderate rates, ramping up once the
// rate approaches the regime where the paper observed packets "start to
// arrive out-of-order" (§IV-c, the Fig 12d error jump at 640 kbps — about
// 400k packets/second of covert symbols).
func ReorderProbabilityAt(packetRate float64) float64 {
	const onset = 250_000.0
	if packetRate <= onset {
		return 0
	}
	p := (packetRate - onset) / 400_000 * 0.3
	if p > 0.3 {
		p = 0.3
	}
	return p
}

// MixSource interleaves multiple sources in arrival order (victim traffic
// plus background noise traffic). Sources must individually be in arrival
// order.
type MixSource struct {
	sources []Source
	heads   []*Frame
}

// NewMixSource merges the given sources.
func NewMixSource(sources ...Source) *MixSource {
	return &MixSource{sources: sources, heads: make([]*Frame, len(sources))}
}

// Next implements Source.
func (m *MixSource) Next() (Frame, bool) {
	bestIdx := -1
	for i, s := range m.sources {
		if m.heads[i] == nil {
			if f, ok := s.Next(); ok {
				m.heads[i] = &f
			}
		}
		if m.heads[i] != nil && (bestIdx < 0 || m.heads[i].Arrival < m.heads[bestIdx].Arrival) {
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return Frame{}, false
	}
	f := *m.heads[bestIdx]
	m.heads[bestIdx] = nil
	return f, true
}

// Collect drains up to max frames from a source into a slice (testing and
// short traces).
func Collect(s Source, max int) []Frame {
	var out []Frame
	for len(out) < max {
		f, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, f)
	}
	return out
}
