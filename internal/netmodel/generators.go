package netmodel

import "repro/internal/sim"

// Source produces frames in arrival order. Generators are iterators rather
// than materialized slices because channel-capacity experiments send
// hundreds of thousands of frames.
type Source interface {
	// Next returns the next frame; ok=false when the stream is exhausted.
	Next() (Frame, bool)
}

// ConstantSource emits fixed-size frames at a fixed packet rate starting at
// a given cycle — the broadcast streams of §III-B (Fig 7, Fig 8).
type ConstantSource struct {
	wire    *Wire
	size    int
	period  uint64
	nextAt  uint64
	remain  int
	known   bool
	started bool
}

// NewConstantSource emits count frames of the given size at packetRate
// frames/second beginning at cycle start. count < 0 means unbounded.
func NewConstantSource(wire *Wire, size int, packetRate float64, start uint64, count int) *ConstantSource {
	return &ConstantSource{
		wire:   wire,
		size:   size,
		period: sim.CyclesPerSecond(packetRate),
		nextAt: start,
		remain: count,
	}
}

// Next implements Source.
func (s *ConstantSource) Next() (Frame, bool) {
	if s.remain == 0 {
		return Frame{}, false
	}
	if s.remain > 0 {
		s.remain--
	}
	f := s.wire.Send(s.size, s.nextAt, s.known)
	s.nextAt += s.period
	return f, true
}

// SymbolSource encodes a symbol stream into frame sizes: each symbol S is
// sent as packetsPerSymbol frames of size (S+2)*64 bytes, back to back at
// line rate (§IV-b). With the full ring this is 256 packets per symbol;
// the multi-buffer scheme (Fig 12a,b) divides the ring into n sections and
// sends 256/n packets per symbol.
type SymbolSource struct {
	wire             *Wire
	symbols          []int
	packetsPerSymbol int
	idx              int
	inSymbol         int
	earliest         uint64
}

// NewSymbolSource builds the covert-channel trojan's frame stream.
func NewSymbolSource(wire *Wire, symbols []int, packetsPerSymbol int, start uint64) *SymbolSource {
	return &SymbolSource{
		wire:             wire,
		symbols:          symbols,
		packetsPerSymbol: packetsPerSymbol,
		earliest:         start,
	}
}

// Next implements Source.
func (s *SymbolSource) Next() (Frame, bool) {
	if s.idx >= len(s.symbols) {
		return Frame{}, false
	}
	sym := s.symbols[s.idx]
	f := s.wire.Send(SizeForBlocks(sym+2), s.earliest, false)
	s.inSymbol++
	if s.inSymbol == s.packetsPerSymbol {
		s.inSymbol = 0
		s.idx++
	}
	return f, true
}

// TraceSource replays an explicit (size, gap) trace — the web-traffic
// replays of §V. Gaps are cycles between consecutive sends.
type TraceSource struct {
	wire   *Wire
	sizes  []int
	gaps   []uint64
	idx    int
	nextAt uint64
}

// NewTraceSource replays sizes[i] with gaps[i] cycles before each frame
// (gaps may be shorter than len(sizes); missing entries are zero).
func NewTraceSource(wire *Wire, sizes []int, gaps []uint64, start uint64) *TraceSource {
	return &TraceSource{wire: wire, sizes: sizes, gaps: gaps, nextAt: start}
}

// Next implements Source.
func (s *TraceSource) Next() (Frame, bool) {
	if s.idx >= len(s.sizes) {
		return Frame{}, false
	}
	if s.idx < len(s.gaps) {
		s.nextAt += s.gaps[s.idx]
	}
	f := s.wire.Send(s.sizes[s.idx], s.nextAt, true)
	s.nextAt = f.Arrival
	s.idx++
	return f, true
}

// ReorderingSource wraps a Source and swaps adjacent frames with a
// rate-dependent probability, modeling the out-of-order arrivals the paper
// observes at 640 kbps (Fig 12d: "the error rate jumps at 640 kbps because
// at that speed the packets start to arrive out-of-order").
type ReorderingSource struct {
	inner   Source
	rng     *sim.RNG
	p       float64
	pending *Frame
}

// NewReorderingSource swaps adjacent frames with probability p.
func NewReorderingSource(inner Source, p float64, rng *sim.RNG) *ReorderingSource {
	return &ReorderingSource{inner: inner, rng: rng, p: p}
}

// Next implements Source. A swap exchanges the sizes of two adjacent
// frames (their DMA order is what the spy observes, so swapping payload
// order while keeping arrival slots models NIC-queue reordering).
func (s *ReorderingSource) Next() (Frame, bool) {
	if s.pending != nil {
		f := *s.pending
		s.pending = nil
		return f, true
	}
	f, ok := s.inner.Next()
	if !ok {
		return Frame{}, false
	}
	if s.p > 0 && s.rng.Bernoulli(s.p) {
		g, ok2 := s.inner.Next()
		if ok2 {
			f.Size, g.Size = g.Size, f.Size
			s.pending = &g
		}
	}
	return f, true
}

// ReorderProbabilityAt models NIC-queue reordering as a function of the
// sender's packet rate: negligible at moderate rates, ramping up once the
// rate approaches the regime where the paper observed packets "start to
// arrive out-of-order" (§IV-c, the Fig 12d error jump at 640 kbps — about
// 400k packets/second of covert symbols).
func ReorderProbabilityAt(packetRate float64) float64 {
	const onset = 250_000.0
	if packetRate <= onset {
		return 0
	}
	p := (packetRate - onset) / 400_000 * 0.3
	if p > 0.3 {
		p = 0.3
	}
	return p
}

// PoissonSource emits frames with exponential inter-arrival gaps at a mean
// rate, drawing each frame's size uniformly from a palette — the memoryless
// background traffic of a server handling many independent clients. Frames
// are Known (ordinary protocol traffic the receiving kernel processes), so
// they exercise the driver's full copy/fragment path, unlike the attack's
// dropped broadcast streams.
type PoissonSource struct {
	wire    *Wire
	sizes   []int
	meanGap float64
	rng     *sim.RNG
	nextAt  uint64
	remain  int
}

// NewPoissonSource emits count frames (count < 0 means unbounded) at a mean
// rate of rate frames/second beginning around cycle start. Sizes must be
// non-empty; a single-element palette gives fixed-size Poisson traffic.
func NewPoissonSource(wire *Wire, sizes []int, rate float64, rng *sim.RNG, start uint64, count int) *PoissonSource {
	if len(sizes) == 0 {
		sizes = []int{MinFrameSize}
	}
	return &PoissonSource{
		wire:    wire,
		sizes:   sizes,
		meanGap: float64(sim.CyclesPerSecond(rate)),
		rng:     rng,
		nextAt:  start,
		remain:  count,
	}
}

// Next implements Source.
func (s *PoissonSource) Next() (Frame, bool) {
	if s.remain == 0 {
		return Frame{}, false
	}
	if s.remain > 0 {
		s.remain--
	}
	s.nextAt += uint64(s.rng.ExpFloat64()*s.meanGap + 0.5)
	size := s.sizes[s.rng.Intn(len(s.sizes))]
	return s.wire.Send(size, s.nextAt, true), true
}

// BurstySource gates an inner source into on/off windows: frames whose
// inner-time arrival falls past the current on-window are pushed later by
// the accumulated off time, producing the bursty shape of interactive web
// traffic (page loads separated by think time). Relative pacing inside a
// burst is preserved, so wire serialization still holds, and arrival order
// is preserved because the inserted offset never decreases.
type BurstySource struct {
	inner   Source
	on, off uint64
	rng     *sim.RNG // optional: jitters window durations by +/-50%
	started bool
	onEnd   uint64 // end of the current on-window, in inner time
	offset  uint64 // accumulated off time added to arrivals
}

// NewBurstySource wraps inner with on/off gating. on and off are window
// durations in cycles; rng may be nil for strictly periodic windows.
func NewBurstySource(inner Source, on, off uint64, rng *sim.RNG) *BurstySource {
	if on == 0 {
		on = 1
	}
	return &BurstySource{inner: inner, on: on, off: off, rng: rng}
}

func (s *BurstySource) window(d uint64) uint64 {
	if s.rng == nil || d == 0 {
		return d
	}
	w := uint64(s.rng.Jitter(float64(d), 0.5))
	if w == 0 {
		w = 1
	}
	return w
}

// Next implements Source.
func (s *BurstySource) Next() (Frame, bool) {
	f, ok := s.inner.Next()
	if !ok {
		return Frame{}, false
	}
	if !s.started {
		s.started = true
		s.onEnd = f.Arrival + s.window(s.on)
	}
	for f.Arrival >= s.onEnd {
		s.offset += s.window(s.off)
		s.onEnd += s.window(s.on)
	}
	f.Arrival += s.offset
	return f, true
}

// MixSource interleaves multiple sources in arrival order (victim traffic
// plus background noise traffic). Sources must individually be in arrival
// order.
type MixSource struct {
	sources []Source
	heads   []*Frame
}

// NewMixSource merges the given sources.
func NewMixSource(sources ...Source) *MixSource {
	return &MixSource{sources: sources, heads: make([]*Frame, len(sources))}
}

// Next implements Source.
func (m *MixSource) Next() (Frame, bool) {
	bestIdx := -1
	for i, s := range m.sources {
		if m.heads[i] == nil {
			if f, ok := s.Next(); ok {
				m.heads[i] = &f
			}
		}
		if m.heads[i] != nil && (bestIdx < 0 || m.heads[i].Arrival < m.heads[bestIdx].Arrival) {
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return Frame{}, false
	}
	f := *m.heads[bestIdx]
	m.heads[bestIdx] = nil
	return f, true
}

// Collect drains up to max frames from a source into a slice (testing and
// short traces).
func Collect(s Source, max int) []Frame {
	var out []Frame
	for len(out) < max {
		f, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, f)
	}
	return out
}
