package netmodel

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestFrameBlocks(t *testing.T) {
	cases := []struct{ size, blocks int }{
		{64, 1}, {65, 2}, {128, 2}, {192, 3}, {256, 4}, {1522, 24},
	}
	for _, c := range cases {
		f := Frame{Size: c.size}
		if got := f.Blocks(); got != c.blocks {
			t.Errorf("Blocks(%d)=%d want %d", c.size, got, c.blocks)
		}
	}
}

func TestFrameValidate(t *testing.T) {
	if (Frame{Size: 64}).Validate() != nil {
		t.Error("64B frame is legal")
	}
	if (Frame{Size: 63}).Validate() == nil {
		t.Error("63B frame is illegal")
	}
	if (Frame{Size: 1523}).Validate() == nil {
		t.Error("1523B frame is illegal")
	}
}

func TestSizeForBlocks(t *testing.T) {
	if SizeForBlocks(1) != 64 {
		t.Error("1 block -> 64B")
	}
	if SizeForBlocks(4) != 256 {
		t.Error("4 blocks -> 256B")
	}
	if SizeForBlocks(100) != MaxFrameSize {
		t.Error("oversize clamps to max frame")
	}
	// Round trip: a frame of SizeForBlocks(n) occupies exactly n blocks.
	for n := 1; n <= 23; n++ {
		f := Frame{Size: SizeForBlocks(n)}
		if f.Blocks() != n {
			t.Errorf("round trip n=%d got %d blocks", n, f.Blocks())
		}
	}
}

func TestMaxFrameRateMatchesPaperOrder(t *testing.T) {
	// Paper §IV: ~500k fps for 192-byte frames at 1 GbE; our overhead
	// model gives ~590k. Assert the order of magnitude and the resulting
	// symbol-rate bound of ~2k symbols/s at 256 packets per symbol.
	rate := MaxFrameRate(192, GigabitRate)
	if rate < 400_000 || rate > 700_000 {
		t.Errorf("192B frame rate %.0f outside plausible 1GbE range", rate)
	}
	symbols := rate / 256
	if symbols < 1500 || symbols > 2700 {
		t.Errorf("symbol bound %.0f/s; paper reports 1953", symbols)
	}
}

func TestWireSerializes(t *testing.T) {
	w := NewWire(GigabitRate)
	f1 := w.Send(1522, 0, false)
	f2 := w.Send(1522, 0, false)
	if f2.Arrival <= f1.Arrival {
		t.Error("second frame must arrive after first")
	}
	if f2.Arrival-f1.Arrival != WireTime(1522, GigabitRate) {
		t.Error("back-to-back frames must be spaced by wire time")
	}
	if f1.Seq != 0 || f2.Seq != 1 {
		t.Error("sequence numbers must increment")
	}
}

func TestConstantSourcePacing(t *testing.T) {
	w := NewWire(GigabitRate)
	src := NewConstantSource(w, 64, 200_000, 0, 10)
	frames := Collect(src, 100)
	if len(frames) != 10 {
		t.Fatalf("got %d frames want 10", len(frames))
	}
	period := sim.CyclesPerSecond(200_000)
	for i := 1; i < len(frames); i++ {
		gap := frames[i].Arrival - frames[i-1].Arrival
		if gap != period {
			t.Errorf("gap %d want %d (wire far below saturation)", gap, period)
		}
	}
}

func TestConstantSourceLineRateBound(t *testing.T) {
	// Requesting far beyond line rate must degrade to wire spacing.
	w := NewWire(GigabitRate)
	src := NewConstantSource(w, 1522, 10_000_000, 0, 5)
	frames := Collect(src, 5)
	wt := WireTime(1522, GigabitRate)
	for i := 1; i < len(frames); i++ {
		if frames[i].Arrival-frames[i-1].Arrival != wt {
			t.Error("saturated wire must space frames by wire time")
		}
	}
}

func TestSymbolSourceEncoding(t *testing.T) {
	w := NewWire(GigabitRate)
	src := NewSymbolSource(w, []int{0, 1, 2}, 4, 0)
	frames := Collect(src, 100)
	if len(frames) != 12 {
		t.Fatalf("3 symbols x 4 packets = 12 frames, got %d", len(frames))
	}
	wantBlocks := []int{2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4}
	for i, f := range frames {
		if f.Blocks() != wantBlocks[i] {
			t.Errorf("frame %d blocks=%d want %d", i, f.Blocks(), wantBlocks[i])
		}
	}
}

func TestTraceSourceGaps(t *testing.T) {
	w := NewWire(GigabitRate)
	src := NewTraceSource(w, []int{64, 128, 256}, []uint64{0, 1000, 1000}, 0)
	frames := Collect(src, 10)
	if len(frames) != 3 {
		t.Fatalf("got %d frames", len(frames))
	}
	if frames[1].Arrival <= frames[0].Arrival+1000 {
		t.Error("gap must delay the second frame")
	}
	if !frames[0].Known {
		t.Error("trace frames are Known protocol traffic")
	}
}

func TestReorderingSourceZeroProbIsIdentity(t *testing.T) {
	w := NewWire(GigabitRate)
	base := NewConstantSource(w, 64, 100_000, 0, 20)
	re := NewReorderingSource(base, 0, sim.NewRNG(1))
	frames := Collect(re, 30)
	if len(frames) != 20 {
		t.Fatalf("got %d", len(frames))
	}
	for i, f := range frames {
		if f.Seq != uint64(i) {
			t.Error("p=0 must preserve order")
		}
	}
}

func TestReorderingSourceSwaps(t *testing.T) {
	w := NewWire(GigabitRate)
	sizes := make([]int, 50)
	for i := range sizes {
		sizes[i] = SizeForBlocks(i%4 + 1)
	}
	base := NewTraceSource(w, sizes, nil, 0)
	re := NewReorderingSource(base, 1.0, sim.NewRNG(2))
	frames := Collect(re, 60)
	if len(frames) != 50 {
		t.Fatalf("reordering must not drop frames: %d", len(frames))
	}
	swapped := 0
	for i, f := range frames {
		if f.Size != sizes[i] {
			swapped++
		}
	}
	if swapped == 0 {
		t.Error("p=1 must swap some frame sizes")
	}
}

func TestMixSourceMergesByArrival(t *testing.T) {
	w := NewWire(GigabitRate)
	a := NewConstantSource(w, 64, 50_000, 0, 5)
	b := NewConstantSource(w, 128, 70_000, 1000, 5)
	mix := NewMixSource(a, b)
	frames := Collect(mix, 100)
	if len(frames) != 10 {
		t.Fatalf("got %d frames want 10", len(frames))
	}
	for i := 1; i < len(frames); i++ {
		if frames[i].Arrival < frames[i-1].Arrival {
			t.Fatal("merged stream must be in arrival order")
		}
	}
}

func TestWireTimeMonotonic(t *testing.T) {
	f := func(a, b uint16) bool {
		sa := int(a%1459) + 64
		sb := int(b%1459) + 64
		if sa > sb {
			sa, sb = sb, sa
		}
		return WireTime(sa, GigabitRate) <= WireTime(sb, GigabitRate)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
