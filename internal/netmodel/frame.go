// Package netmodel models the network between the remote trojan/victim
// servers and the machine under attack: Ethernet frames, 1 GbE wire pacing
// (the covert channel in the paper is line-rate bound), traffic generators
// for the attack experiments, and the high-rate reordering effect that
// caps the full-chasing channel at 640 kbps (Fig 12d).
package netmodel

import (
	"fmt"

	"repro/internal/sim"
)

const (
	// MinFrameSize is the minimum Ethernet frame (64 bytes, §III-A).
	MinFrameSize = 64
	// MaxFrameSize is the maximum frame with VLAN tagging (1522 bytes).
	MaxFrameSize = 1522
	// MTU is the Ethernet maximum transferable unit (1500-byte payload).
	MTU = 1500
	// wireOverhead is the per-frame overhead on the wire that does not
	// appear in the frame buffer: 8 bytes preamble+SFD and 12 bytes
	// inter-frame gap.
	wireOverhead = 20
	// GigabitRate is the paper's 1 GbE link speed in bits/second.
	GigabitRate = 1e9
)

// Frame is one Ethernet frame as seen by the NIC.
type Frame struct {
	// Seq is a monotonically increasing sequence number assigned by the
	// sender (ground truth only; the receiver never sees it).
	Seq uint64
	// Size is the frame size in bytes, MinFrameSize..MaxFrameSize.
	Size int
	// Arrival is the cycle at which the NIC finishes receiving the frame.
	Arrival uint64
	// Known marks frames whose protocol the receiving kernel handles.
	// The attack's broadcast frames are Unknown: the driver reads the
	// header, finds no protocol handler, and drops them — their cache
	// footprint comes only from the DMA write and the driver's header
	// access (§III-B).
	Known bool
}

// Blocks returns the number of 64-byte cache blocks the frame occupies in
// its rx buffer. Packet sizes in the paper are measured in this unit.
func (f Frame) Blocks() int {
	return (f.Size + 63) / 64
}

// Validate checks the frame is a legal Ethernet frame.
func (f Frame) Validate() error {
	if f.Size < MinFrameSize || f.Size > MaxFrameSize {
		return fmt.Errorf("netmodel: frame size %d outside [%d,%d]", f.Size, MinFrameSize, MaxFrameSize)
	}
	return nil
}

// SizeForBlocks returns the smallest legal frame size that occupies exactly
// n cache blocks, as used by the covert-channel encoders: symbol S is sent
// as a (S+2)*64-byte frame (§IV-b).
func SizeForBlocks(n int) int {
	if n < 1 {
		n = 1
	}
	if n*64 > MaxFrameSize {
		return MaxFrameSize
	}
	if n == 1 {
		return MinFrameSize
	}
	return n * 64
}

// WireTime returns the number of cycles a frame of the given size occupies
// the wire at rateBps, including preamble and inter-frame gap.
func WireTime(size int, rateBps float64) uint64 {
	bits := float64(size+wireOverhead) * 8
	return sim.Cycles(bits / rateBps)
}

// MaxFrameRate returns the maximum frames/second for the given frame size
// at rateBps. For 192-byte frames at 1 GbE this is ~590 k fps — the paper
// quotes "around 500,000", the same order; the channel-capacity bound of
// ~1953 symbols/s at 256 packets per symbol follows either way.
func MaxFrameRate(size int, rateBps float64) float64 {
	return rateBps / (float64(size+wireOverhead) * 8)
}

// Wire serializes frames onto a shared link: a frame's arrival is the later
// of the requested time and the wire becoming free, plus its wire time.
type Wire struct {
	rateBps  float64
	nextFree uint64
	nextSeq  uint64
	sent     uint64
}

// NewWire returns a wire at the given bit rate.
func NewWire(rateBps float64) *Wire {
	return &Wire{rateBps: rateBps}
}

// Send schedules a frame of the given size no earlier than cycle earliest
// and returns it with its arrival time stamped.
func (w *Wire) Send(size int, earliest uint64, known bool) Frame {
	start := earliest
	if w.nextFree > start {
		start = w.nextFree
	}
	arrival := start + WireTime(size, w.rateBps)
	w.nextFree = arrival
	f := Frame{Seq: w.nextSeq, Size: size, Arrival: arrival, Known: known}
	w.nextSeq++
	w.sent++
	return f
}

// Sent returns the number of frames pushed through the wire.
func (w *Wire) Sent() uint64 { return w.sent }

// NextFree returns the cycle at which the wire becomes idle.
func (w *Wire) NextFree() uint64 { return w.nextFree }
