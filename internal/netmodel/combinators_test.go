package netmodel

import (
	"testing"

	"repro/internal/sim"
)

func TestPoissonSourceRateAndSizes(t *testing.T) {
	wire := NewWire(GigabitRate)
	rng := sim.NewRNG(1)
	sizes := []int{64, 256, 1514}
	const n = 5000
	src := NewPoissonSource(wire, sizes, 100_000, rng, 0, n)
	frames := Collect(src, n+1)
	if len(frames) != n {
		t.Fatalf("got %d frames want %d", len(frames), n)
	}
	seen := map[int]int{}
	last := uint64(0)
	for i, f := range frames {
		if err := f.Validate(); err != nil {
			t.Fatal(err)
		}
		if !f.Known {
			t.Fatal("poisson traffic must be ordinary known protocol traffic")
		}
		if f.Arrival < last {
			t.Fatalf("arrival order violated at %d", i)
		}
		last = f.Arrival
		seen[f.Size]++
	}
	for _, s := range sizes {
		if seen[s] == 0 {
			t.Errorf("size %d never drawn", s)
		}
	}
	// Mean rate within 10% of nominal: n frames over the observed span.
	rate := float64(n) / sim.Seconds(frames[n-1].Arrival)
	if rate < 90_000 || rate > 110_000 {
		t.Errorf("realized rate %.0f pps, want ~100k", rate)
	}
}

func TestPoissonSourceEmptyPaletteFallsBack(t *testing.T) {
	src := NewPoissonSource(NewWire(GigabitRate), nil, 1000, sim.NewRNG(1), 0, 3)
	for f, ok := src.Next(); ok; f, ok = src.Next() {
		if f.Size != MinFrameSize {
			t.Fatalf("empty palette should emit minimum frames, got %d", f.Size)
		}
	}
}

func TestBurstySourceInsertsGapsKeepsOrder(t *testing.T) {
	wire := NewWire(GigabitRate)
	// 1000 frames at 100k pps = 10ms of steady inner traffic.
	inner := NewConstantSource(wire, 64, 100_000, 0, 1000)
	on, off := sim.Cycles(0.001), sim.Cycles(0.004)
	src := NewBurstySource(inner, on, off, nil)
	frames := Collect(src, 1001)
	if len(frames) != 1000 {
		t.Fatalf("bursty wrapper lost frames: %d", len(frames))
	}
	var maxGap uint64
	for i := 1; i < len(frames); i++ {
		if frames[i].Arrival < frames[i-1].Arrival {
			t.Fatalf("arrival order violated at %d", i)
		}
		if g := frames[i].Arrival - frames[i-1].Arrival; g > maxGap {
			maxGap = g
		}
	}
	// Off-windows must show up as gaps of at least the off duration.
	if maxGap < off {
		t.Errorf("no off-window gap found: max gap %d < off %d", maxGap, off)
	}
	// Total span stretches by roughly the inserted off time: 10ms of
	// traffic in 1ms on-windows inserts ~9-10 off windows of 4ms.
	span := frames[len(frames)-1].Arrival - frames[0].Arrival
	if span < sim.Cycles(0.030) {
		t.Errorf("span %d cycles too short for on/off gating", span)
	}
}

func TestBurstySourceJitteredStillOrdered(t *testing.T) {
	wire := NewWire(GigabitRate)
	inner := NewPoissonSource(wire, []int{64, 1514}, 200_000, sim.NewRNG(2), 0, 2000)
	src := NewBurstySource(inner, sim.Cycles(0.0005), sim.Cycles(0.002), sim.NewRNG(3))
	frames := Collect(src, 2000)
	for i := 1; i < len(frames); i++ {
		if frames[i].Arrival < frames[i-1].Arrival {
			t.Fatalf("arrival order violated at %d", i)
		}
	}
}
