package netmodel

import (
	"testing"

	"repro/internal/sim"
)

// sliceSource replays a fixed frame slice — the minimal Source for
// adversarial-input tests, bypassing wire pacing entirely.
type sliceSource struct {
	frames []Frame
	idx    int
}

func (s *sliceSource) Next() (Frame, bool) {
	if s.idx >= len(s.frames) {
		return Frame{}, false
	}
	f := s.frames[s.idx]
	s.idx++
	return f, true
}

// decodeSources carves fuzz bytes into 1..4 individually arrival-ordered
// sources with globally unique Seq numbers. Each input byte contributes
// one frame: the low bits pick the per-frame arrival gap so streams
// overlap, collide, and stall in adversarial patterns.
func decodeSources(data []byte) []*sliceSource {
	if len(data) == 0 {
		return nil
	}
	n := int(data[0])%4 + 1
	data = data[1:]
	srcs := make([]*sliceSource, n)
	for i := range srcs {
		srcs[i] = &sliceSource{}
	}
	arrivals := make([]uint64, n)
	for i, b := range data {
		si := i % n
		arrivals[si] += uint64(b % 32) // gap 0..31: heavy same-cycle collisions
		srcs[si].frames = append(srcs[si].frames, Frame{
			Seq:     uint64(i),
			Size:    MinFrameSize,
			Arrival: arrivals[si],
		})
	}
	return srcs
}

// FuzzMixSourceOrdering checks the MixSource invariants on adversarial
// stream shapes: the merged output is nondecreasing in arrival, conserves
// every input frame exactly once, and terminates.
func FuzzMixSourceOrdering(f *testing.F) {
	f.Add([]byte{2, 1, 1, 1, 1})
	f.Add([]byte{4, 0, 0, 0, 0, 0, 0, 0, 0})                    // all same-cycle
	f.Add([]byte{3, 31, 0, 5, 31, 0, 5, 31, 0, 5, 1, 2, 3})     // skewed rates
	f.Add([]byte{1, 7, 7, 7})                                   // single source
	f.Add([]byte{2, 31, 31, 31, 31, 0, 0, 0, 0, 15, 15, 15, 1}) // bursts
	f.Fuzz(func(t *testing.T, data []byte) {
		srcs := decodeSources(data)
		if len(srcs) == 0 {
			return
		}
		total := 0
		for _, s := range srcs {
			total += len(s.frames)
		}
		mixed := make([]Source, len(srcs))
		for i, s := range srcs {
			mixed[i] = s
		}
		out := Collect(NewMixSource(mixed...), total+1)
		if len(out) != total {
			t.Fatalf("frame conservation violated: %d in, %d out", total, len(out))
		}
		seen := make(map[uint64]bool, total)
		for i, fr := range out {
			if i > 0 && fr.Arrival < out[i-1].Arrival {
				t.Fatalf("arrival order violated at %d: %d after %d", i, fr.Arrival, out[i-1].Arrival)
			}
			if seen[fr.Seq] {
				t.Fatalf("frame %d emitted twice", fr.Seq)
			}
			seen[fr.Seq] = true
		}
	})
}

// FuzzBurstySourceOrdering checks the on/off wrapper never reorders or
// drops frames regardless of window geometry or input spacing.
func FuzzBurstySourceOrdering(f *testing.F) {
	f.Add([]byte{1, 1, 1, 1, 1}, uint64(10), uint64(100), false)
	f.Add([]byte{0, 0, 0, 0}, uint64(1), uint64(0), true) // degenerate windows
	f.Add([]byte{31, 31, 31, 31, 31, 31}, uint64(1000), uint64(50), true)
	f.Fuzz(func(t *testing.T, data []byte, on, off uint64, jitter bool) {
		if on > 1<<40 || off > 1<<40 {
			return // absurd windows only waste time, not find bugs
		}
		var arrival uint64
		src := &sliceSource{}
		for i, b := range data {
			arrival += uint64(b % 32)
			src.frames = append(src.frames, Frame{Seq: uint64(i), Size: MinFrameSize, Arrival: arrival})
		}
		var rng *sim.RNG
		if jitter {
			rng = sim.NewRNG(7)
		}
		out := Collect(NewBurstySource(src, on, off, rng), len(src.frames)+1)
		if len(out) != len(src.frames) {
			t.Fatalf("conservation violated: %d in, %d out", len(src.frames), len(out))
		}
		for i := 1; i < len(out); i++ {
			if out[i].Arrival < out[i-1].Arrival {
				t.Fatalf("arrival order violated at %d", i)
			}
		}
		// Gating may only delay, never accelerate.
		for i, fr := range out {
			if fr.Arrival < src.frames[i].Arrival {
				t.Fatalf("frame %d accelerated: %d < %d", i, fr.Arrival, src.frames[i].Arrival)
			}
		}
	})
}
